package seal

// One benchmark per table and figure of the paper's evaluation, each
// regenerating the corresponding rows/series via internal/exp. The
// benchmarks run at the reduced "quick" scale so `go test -bench=.`
// finishes in minutes; the paper-scale numbers recorded in
// EXPERIMENTS.md come from `sealsim`/`sealsec` with default configs.
// Custom metrics attach the headline quantity of each experiment to the
// benchmark output (e.g. normalized IPC of SEAL-D vs Direct).

import (
	"testing"

	"seal/internal/dataset"
	"seal/internal/exp"
	"seal/internal/models"
	"seal/internal/nn"
	"seal/internal/prng"
	"seal/internal/tensor"
)

var benchTable *exp.Table // sink

// BenchmarkTrainStep measures one full training step — train-mode
// forward, softmax cross-entropy, backward, SGD update — on the
// small-width VGG-16 the security experiments train (scale 0.0625,
// batch 16). This is the inner loop of every victim and substitute
// training run behind Figures 3-4.
func BenchmarkTrainStep(b *testing.B) {
	rng := prng.New(7)
	arch := models.VGG16Arch().Scale(0.0625, 0)
	m, err := models.Build(arch, rng.Fork())
	if err != nil {
		b.Fatal(err)
	}
	gen := dataset.NewGenerator(dataset.DefaultConfig(), 7)
	ds := gen.Sample(16)
	x, labels := ds.Batch(0, 16)
	params := m.Params()
	opt := nn.NewSGD(0.05, 0.9, 0)
	var ce nn.SoftmaxCE
	step := func() {
		out := m.Forward(x, true)
		_, grad := ce.Loss(out, labels)
		m.Backward(grad)
		opt.Step(params)
	}
	step() // warm-up: builds the layer workspaces and optimizer state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// BenchmarkLinearBackward measures the fully-connected backward pass
// (dW = gradᵀ×x, dx = grad×W) at the widths of the scaled VGG
// classifier head.
func BenchmarkLinearBackward(b *testing.B) {
	rng := prng.New(11)
	lin := nn.NewLinear("fc", rng, 512, 256)
	x := tensor.New(64, 512)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	grad := tensor.New(64, 256)
	for i := range grad.Data {
		grad.Data[i] = float32(rng.NormFloat64())
	}
	lin.Forward(x, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lin.Backward(grad)
	}
}

// benchSecureSetup builds the encrypted image and streaming engine for
// the secure-forward benchmarks: VGG-16 at scale 0.25, SE ratio 50%.
func benchSecureSetup(b *testing.B, batch int) (*SecureEngine, *Model, *tensor.Tensor) {
	b.Helper()
	rng := prng.New(21)
	arch := models.VGG16Arch().Scale(0.25, 0)
	m, err := models.Build(arch, rng.Fork())
	if err != nil {
		b.Fatal(err)
	}
	p, err := NewPlan(m, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	l, err := NewLayout(p, batch)
	if err != nil {
		b.Fatal(err)
	}
	img, err := NewMemoryImage(l, m, testImageKey)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewSecureEngine(img, m)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.New(batch, arch.InC, arch.InH, arch.InW)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	return e, m, x
}

// BenchmarkSecureForward measures streamed secure inference against the
// plaintext forward on the same model and batch: the sub-benchmark
// ratio is the roofline gap the streaming engine is built to close.
func BenchmarkSecureForward(b *testing.B) {
	e, m, x := benchSecureSetup(b, 16)
	b.Run("plaintext", func(b *testing.B) {
		m.Forward(x, false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Forward(x, false)
		}
	})
	b.Run("secure", func(b *testing.B) {
		e.Forward(x)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Forward(x)
		}
		st := e.Stats()
		b.ReportMetric(float64(st.BytesDecrypted)/float64(st.Forwards)/1e6, "MBdec/op")
	})
}

// BenchmarkDecryptRegion measures the bulk run-coalesced region decrypt
// that feeds the streaming engine, over every weight region of the
// benchmark model (mixed ciphertext/plaintext runs at ratio 50%).
func BenchmarkDecryptRegion(b *testing.B) {
	e, _, _ := benchSecureSetup(b, 1)
	img := e.Image()
	var total int64
	var dst []byte
	for _, lp := range img.Layout.Plan.Layers {
		r := img.Layout.Region("w:" + lp.Name)
		total += int64(r.Size)
		if int(r.Size) > len(dst) {
			dst = make([]byte, r.Size)
		}
	}
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, lp := range img.Layout.Plan.Layers {
			r := img.Layout.Region("w:" + lp.Name)
			if _, err := img.DecryptRegionInto(r, dst); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTableI_EngineThroughput regenerates Table I: the published
// AES engine design points and the simulated sustained throughput of
// each under our engine timing model.
func BenchmarkTableI_EngineThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchTable = exp.TableI()
	}
	if v, ok := benchTable.Cell("Modeled (paper §IV-A)", "Simulated(GB/s)"); ok {
		b.ReportMetric(v, "GB/s")
	}
}

// BenchmarkFig1_MatmulIPC regenerates Figure 1: matmul IPC under
// baseline, direct and counter-mode encryption with the counter-cache
// sweep, plus counter-cache hit rates.
func BenchmarkFig1_MatmulIPC(b *testing.B) {
	cfg := exp.QuickTimingConfig()
	cfg.CounterSweepKB = []int{24, 96}
	for i := 0; i < b.N; i++ {
		t, err := exp.Figure1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		benchTable = t
	}
	base, _ := benchTable.Cell("Baseline", "IPC")
	direct, _ := benchTable.Cell("Direct", "IPC")
	b.ReportMetric(base, "baseIPC")
	b.ReportMetric(direct/base, "directRatio")
}

// BenchmarkFig3_IPStealing regenerates Figure 3: substitute-model
// inference accuracy for white-box, black-box and SEAL adversaries.
func BenchmarkFig3_IPStealing(b *testing.B) {
	cfg := exp.QuickSecurityConfig()
	var res *exp.SecurityResults
	for i := 0; i < b.N; i++ {
		r, err := exp.RunSecurity(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	m := res.Models[0]
	b.ReportMetric(m.WhiteAcc, "whiteAcc")
	b.ReportMetric(m.BlackAcc, "blackAcc")
	b.ReportMetric(m.SEALAcc[0.5], "seal50Acc")
}

// BenchmarkFig4_Transferability regenerates Figure 4: adversarial
// transferability of I-FGSM examples from each substitute model.
func BenchmarkFig4_Transferability(b *testing.B) {
	cfg := exp.QuickSecurityConfig()
	var res *exp.SecurityResults
	for i := 0; i < b.N; i++ {
		r, err := exp.RunSecurity(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	m := res.Models[0]
	b.ReportMetric(m.WhiteTrans, "whiteTrans")
	b.ReportMetric(m.BlackTrans, "blackTrans")
	b.ReportMetric(m.SEALTrans[0.5], "seal50Trans")
}

// BenchmarkFig5_ConvIPC regenerates Figure 5: normalized IPC of the VGG
// CONV layers with 64/128/256/512 channels under the five schemes.
func BenchmarkFig5_ConvIPC(b *testing.B) {
	cfg := exp.QuickTimingConfig()
	for i := 0; i < b.N; i++ {
		t, err := exp.Figure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		benchTable = t
	}
	d, _ := benchTable.Cell("Direct", "CONV-4")
	s, _ := benchTable.Cell("SEAL-D", "CONV-4")
	b.ReportMetric(d, "directConv4")
	b.ReportMetric(s/d, "sealGain")
}

// BenchmarkFig6_PoolIPC regenerates Figure 6: normalized IPC of the
// five VGG POOL layers.
func BenchmarkFig6_PoolIPC(b *testing.B) {
	cfg := exp.QuickTimingConfig()
	for i := 0; i < b.N; i++ {
		t, err := exp.Figure6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		benchTable = t
	}
	d, _ := benchTable.Cell("Direct", "POOL-2")
	s, _ := benchTable.Cell("SEAL-D", "POOL-2")
	b.ReportMetric(d, "directPool2")
	b.ReportMetric(s/d, "sealGain")
}

// BenchmarkFig7_OverallIPC and BenchmarkFig8_Latency regenerate the
// whole-inference results for VGG-16 / ResNet-18 / ResNet-34.
func BenchmarkFig7_OverallIPC(b *testing.B) {
	cfg := exp.QuickTimingConfig()
	var nr *exp.NetworkResults
	for i := 0; i < b.N; i++ {
		r, err := exp.RunNetworks(cfg)
		if err != nil {
			b.Fatal(err)
		}
		nr = r
	}
	t := nr.Figure7()
	d, _ := t.Cell("Direct", "VGG-16")
	s, _ := t.Cell("SEAL-D", "VGG-16")
	b.ReportMetric(d, "directVGG")
	b.ReportMetric(s/d, "sealOverDirect")
}

// BenchmarkFig8_Latency reports the latency view of the same runs.
func BenchmarkFig8_Latency(b *testing.B) {
	cfg := exp.QuickTimingConfig()
	var nr *exp.NetworkResults
	for i := 0; i < b.N; i++ {
		r, err := exp.RunNetworks(cfg)
		if err != nil {
			b.Fatal(err)
		}
		nr = r
	}
	t := nr.Figure8()
	d, _ := t.Cell("Direct", "VGG-16")
	s, _ := t.Cell("SEAL-D", "VGG-16")
	b.ReportMetric(d, "directLatency")
	b.ReportMetric(1-s/d, "sealLatencyCut")
}

// BenchmarkAblation_RatioSweep regenerates the encryption-ratio
// ablation behind the paper's 50% choice.
func BenchmarkAblation_RatioSweep(b *testing.B) {
	cfg := exp.QuickTimingConfig()
	for i := 0; i < b.N; i++ {
		t, err := exp.RatioSweep(cfg, []float64{0.2, 0.5, 0.8})
		if err != nil {
			b.Fatal(err)
		}
		benchTable = t
	}
	v, _ := benchTable.Cell("ratio=50%", "SEAL-D")
	b.ReportMetric(v, "seal50IPC")
}

// BenchmarkAblation_L2Sweep regenerates the L2-size ablation: larger
// caches shrink the encryption penalty by absorbing traffic before the
// engines.
func BenchmarkAblation_L2Sweep(b *testing.B) {
	cfg := exp.QuickTimingConfig()
	for i := 0; i < b.N; i++ {
		t, err := exp.L2Sweep(cfg, []int{64, 256})
		if err != nil {
			b.Fatal(err)
		}
		benchTable = t
	}
	small, _ := benchTable.Cell("L2=64KB/slice", "NormIPC")
	big, _ := benchTable.Cell("L2=256KB/slice", "NormIPC")
	b.ReportMetric(big-small, "L2relief")
}

// BenchmarkAblation_CounterGranularity regenerates the split-counter
// ablation: fewer counter bytes per line extend counter-cache reach.
func BenchmarkAblation_CounterGranularity(b *testing.B) {
	cfg := exp.QuickTimingConfig()
	for i := 0; i < b.N; i++ {
		t, err := exp.CounterGranularity(cfg, []int{8, 1})
		if err != nil {
			b.Fatal(err)
		}
		benchTable = t
	}
	hr8, _ := benchTable.Cell("8B/ctr", "CtrHitRate")
	hr1, _ := benchTable.Cell("1B/ctr", "CtrHitRate")
	b.ReportMetric(hr1-hr8, "splitCtrGain")
}

// BenchmarkAblation_ImportanceMetric regenerates the ℓ1-vs-random
// selection ablation on the security side.
func BenchmarkAblation_ImportanceMetric(b *testing.B) {
	cfg := exp.QuickSecurityConfig()
	for i := 0; i < b.N; i++ {
		t, err := exp.MetricAblation(cfg, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		benchTable = t
	}
	l1, _ := benchTable.Cell("l1", "SubstituteAcc")
	rnd, _ := benchTable.Cell("random", "SubstituteAcc")
	b.ReportMetric(l1, "l1SubAcc")
	b.ReportMetric(rnd, "randomSubAcc")
}

// BenchmarkAblation_Integrity regenerates the authenticated-memory
// ablation: per-line MACs on top of encryption, with and without SEAL.
func BenchmarkAblation_Integrity(b *testing.B) {
	cfg := exp.QuickTimingConfig()
	for i := 0; i < b.N; i++ {
		t, err := exp.Integrity(cfg)
		if err != nil {
			b.Fatal(err)
		}
		benchTable = t
	}
	dm, _ := benchTable.Cell("Direct+MAC", "NormIPC")
	sm, _ := benchTable.Cell("SEAL-D+MAC", "NormIPC")
	b.ReportMetric(sm/dm, "sealGainUnderMAC")
}

// BenchmarkAblation_EngineCount regenerates the engines-per-controller
// ablation (§II-B's replication alternative).
func BenchmarkAblation_EngineCount(b *testing.B) {
	cfg := exp.QuickTimingConfig()
	for i := 0; i < b.N; i++ {
		t, err := exp.EngineCountAblation(cfg, []int{1, 4})
		if err != nil {
			b.Fatal(err)
		}
		benchTable = t
	}
	one, _ := benchTable.Cell("1 engine(s)", "NormIPC")
	four, _ := benchTable.Cell("4 engine(s)", "NormIPC")
	b.ReportMetric(four/one, "4xEngineGain")
}

// BenchmarkPremise_PruningValidation regenerates the §III-A premise
// check: pruning low-ℓ1 rows preserves accuracy, pruning high-ℓ1 rows
// destroys it.
func BenchmarkPremise_PruningValidation(b *testing.B) {
	cfg := exp.QuickSecurityConfig()
	for i := 0; i < b.N; i++ {
		t, err := exp.PruningPremise(cfg, []float64{0.3})
		if err != nil {
			b.Fatal(err)
		}
		benchTable = t
	}
	low, _ := benchTable.Cell("fraction=30%", "PruneLowL1")
	high, _ := benchTable.Cell("fraction=30%", "PruneHighL1")
	b.ReportMetric(low, "pruneLowAcc")
	b.ReportMetric(high, "pruneHighAcc")
}
